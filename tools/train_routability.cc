/**
 * @file
 * Offline trainer for the routability admission model.
 *
 * Input is a sample file produced by a bench binary running with
 * --collect-routability: a header line
 *
 *   # lisa-routability <accel> <fingerprint> <featureVersion>
 *
 * followed by one "<routed> <f0> ... <f9>" line per observed route call.
 * The tool fits a small MLP to predict routability, picks the admission
 * threshold as the largest score that keeps the false-reject rate on
 * *routable* validation samples below a budget (default 0.5%), reports
 * validation precision/recall, and writes
 * <out-dir>/<accel>.routability(.meta) for the filter to load lazily.
 *
 * Usage: train_routability <samples-file> [out-dir=lisa_models]
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "mapping/routability_filter.hh"
#include "nn/module.hh"
#include "nn/ops.hh"
#include "nn/optimizer.hh"
#include "support/logging.hh"
#include "support/random.hh"

using namespace lisa;

namespace {

constexpr int kF = map::RoutabilityModel::kFeatureCount;
constexpr int kHidden = 48;
constexpr int kEpochs = 600;
constexpr size_t kMaxSamples = 80000;
// The threshold trades viable routes for recall on the hard-capacity
// failures. Conservatism wins twice here: a false reject costs the
// search a candidate it wanted (the II-parity CI gate polices that),
// and aggressive rejection makes the exact mapper's enumeration churn
// through far more placements than just routing them would cost.
constexpr double kFalseRejectBudget = 0.005;

struct Sample
{
    double f[kF];
    bool routed;
};

double
scoreRow(const nn::Tensor &pred, size_t i)
{
    return pred.at(static_cast<int>(i), 0);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 || argc > 3) {
        std::cerr << "usage: train_routability <samples-file> "
                     "[out-dir=lisa_models]\n";
        return 2;
    }
    const std::string samples_path = argv[1];
    const std::string out_dir = argc > 2 ? argv[2] : "lisa_models";

    std::ifstream in(samples_path);
    if (!in)
        fatal("cannot open sample file ", samples_path);

    std::string hash;
    std::string magic;
    std::string accel;
    uint64_t fingerprint = 0;
    int version = 0;
    if (!(in >> hash >> magic >> accel >> fingerprint >> version) ||
        hash != "#" || magic != "lisa-routability")
        fatal(samples_path, ": missing lisa-routability header");
    if (version != map::RoutabilityModel::kFeatureVersion)
        fatal(samples_path, ": feature version ", version,
              " does not match this build (",
              map::RoutabilityModel::kFeatureVersion, ")");

    std::vector<Sample> samples;
    Sample s;
    int label = 0;
    while (in >> label) {
        for (double &v : s.f)
            if (!(in >> v))
                fatal(samples_path, ": truncated sample line");
        s.routed = label != 0;
        // The filter only consults the model for contested
        // (hard-capacity) calls — overuse-allowed routing is admitted
        // outright — so train and threshold on that regime alone.
        // Tolerates sample files from builds that still logged both.
        if (s.f[9] == 0.0)
            samples.push_back(s);
    }
    if (samples.size() < 100)
        fatal(samples_path, ": only ", samples.size(),
              " samples; collect more before training");

    Rng rng(42);
    rng.shuffle(samples);
    if (samples.size() > kMaxSamples)
        samples.resize(kMaxSamples);

    const size_t val_count = std::max<size_t>(1, samples.size() / 10);
    const size_t train_count = samples.size() - val_count;
    size_t routable = 0;
    for (const Sample &x : samples)
        routable += x.routed ? 1 : 0;
    std::cout << "samples: " << samples.size() << " (" << routable
              << " routable), train " << train_count << ", val "
              << val_count << ", accel " << accel << "\n";

    auto tensorOf = [&](size_t begin, size_t count, nn::Tensor &x,
                        nn::Tensor &y) {
        x = nn::Tensor(static_cast<int>(count), kF);
        y = nn::Tensor(static_cast<int>(count), 1);
        for (size_t i = 0; i < count; ++i) {
            for (int j = 0; j < kF; ++j)
                x.at(static_cast<int>(i), j) = samples[begin + i].f[j];
            y.at(static_cast<int>(i), 0) =
                samples[begin + i].routed ? 1.0 : 0.0;
        }
    };
    nn::Tensor train_x;
    nn::Tensor train_y;
    nn::Tensor val_x;
    nn::Tensor val_y;
    tensorOf(0, train_count, train_x, train_y);
    tensorOf(train_count, val_count, val_x, val_y);

    Rng init_rng(1);
    nn::Mlp mlp(kF, kHidden, 1, init_rng, "routability");
    nn::Adam opt;
    opt.attach(mlp);
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
        nn::Tensor loss = nn::mseLoss(mlp.forward(train_x), train_y);
        loss.backward();
        opt.step();
        if (epoch % 50 == 0 || epoch == kEpochs - 1)
            std::cout << "epoch " << epoch << ": train mse "
                      << loss.at(0, 0) << "\n";
    }

    // Threshold: the largest score admitting all but kFalseRejectBudget
    // of the routable validation samples (conservative — the filter must
    // almost never veto a route the router would have found).
    const nn::Tensor val_pred = mlp.forward(val_x);
    std::vector<double> routable_scores;
    for (size_t i = 0; i < val_count; ++i)
        if (val_y.at(static_cast<int>(i), 0) > 0.5)
            routable_scores.push_back(scoreRow(val_pred, i));
    if (routable_scores.empty())
        fatal("validation split has no routable samples");
    std::sort(routable_scores.begin(), routable_scores.end());
    const size_t cut = static_cast<size_t>(
        static_cast<double>(routable_scores.size()) * kFalseRejectBudget);
    const double threshold = routable_scores[cut] - 1e-9;

    size_t tp = 0;
    size_t fp = 0;
    size_t fn = 0;
    for (size_t i = 0; i < val_count; ++i) {
        const bool reject = scoreRow(val_pred, i) < threshold;
        const bool unroutable = val_y.at(static_cast<int>(i), 0) < 0.5;
        tp += (reject && unroutable) ? 1 : 0;
        fp += (reject && !unroutable) ? 1 : 0;
        fn += (!reject && unroutable) ? 1 : 0;
    }
    const double precision =
        tp + fp > 0 ? static_cast<double>(tp) /
                          static_cast<double>(tp + fp)
                    : 1.0;
    const double recall =
        tp + fn > 0 ? static_cast<double>(tp) /
                          static_cast<double>(tp + fn)
                    : 0.0;
    std::cout << "threshold " << threshold << ": validation precision "
              << precision << ", unroutable recall " << recall << "\n";

    if (!map::saveRoutabilityModel(mlp, fingerprint, threshold, out_dir,
                                   accel))
        fatal("cannot write model under ", out_dir);
    std::cout << "wrote " << out_dir << "/" << accel
              << ".routability (+.meta, fingerprint " << fingerprint
              << ")\n";
    return 0;
}
