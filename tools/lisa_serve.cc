/**
 * @file
 * lisa-serve: long-lived mapping daemon over a Unix domain socket.
 *
 * Usage:
 *   lisa-serve --socket /tmp/lisa.sock [--cache FILE] [--max-inflight N]
 *              [--threads N]
 *
 * Protocol: newline-delimited JSON (serve/proto.hh). The result cache
 * file defaults to the LISA_SERVE_CACHE environment knob; arch artifacts
 * warm-start through LISA_ARCH_CACHE as everywhere else. Prints
 * "lisa-serve: ready on <socket>" once accepting, exits on SIGINT /
 * SIGTERM or a client {"op":"shutdown"}.
 */

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "serve/server.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"

namespace {

/** Set by the handler; polled by main. The only async-signal-safe way
 *  to observe a signal from a multithreaded daemon. */
volatile std::sig_atomic_t g_signalled = 0;

void
onSignal(int)
{
    g_signalled = 1;
}

void
usage(const char *argv0)
{
    std::cerr << "usage: " << argv0
              << " --socket PATH [--cache FILE] [--max-inflight N]"
                 " [--threads N]\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lisa;

    std::string socket_path;
    serve::ServeConfig cfg;
    int threads = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << flag << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--socket")
            socket_path = value("--socket");
        else if (arg == "--cache")
            cfg.cacheFile = value("--cache");
        else if (arg == "--max-inflight")
            cfg.maxInflight = std::atoi(value("--max-inflight"));
        else if (arg == "--threads")
            threads = std::atoi(value("--threads"));
        else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::cerr << "unknown flag: " << arg << "\n";
            usage(argv[0]);
            return 2;
        }
    }
    if (socket_path.empty()) {
        usage(argv[0]);
        return 2;
    }
    if (threads > 0)
        ThreadPool::setGlobalThreads(threads);

    serve::MappingService service(cfg);
    serve::ServeServer server(service, socket_path);
    std::string error;
    if (!server.start(&error)) {
        std::cerr << "lisa-serve: " << error << "\n";
        return 1;
    }
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    // The CI smoke test and client scripts wait for this exact line.
    std::cout << "lisa-serve: ready on " << socket_path << std::endl;

    // Short-timeout poll so SIGINT/SIGTERM (observable only through the
    // sig_atomic_t flag) exits promptly too.
    while (!g_signalled && !server.waitForShutdown(0.2)) {
    }
    server.stop();
    service.saveCache();
    const serve::ServeStats stats = service.stats();
    inform("lisa-serve: exiting; ", stats.toJson());
    return 0;
}
