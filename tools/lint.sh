#!/usr/bin/env bash
# Zero-allocation lint for the router hot path.
#
# The inner routing loops (routeEdge and the structures it touches) must
# not allocate: RouterWorkspace exists precisely so per-edge routing
# reuses epoch-stamped scratch storage. This script fails the build when
#
#   1. a raw heap allocation (new / make_unique / make_shared / malloc /
#      calloc / realloc) appears anywhere in a hot-path file, or
#   2. a container-growth call (push_back / emplace_back / insert /
#      resize / assign / reserve on a member vector) appears on a line
#      that is not annotated with `lint:allow-growth` on the same or the
#      preceding line.
#
# The allow marker is reserved for amortized workspace buffers whose
# growth is tracked by RouterWorkspace::growthEvents and settles after
# warm-up. Anything else — in particular a per-edge push_back into a
# fresh vector — is a hot-loop allocation and must be rewritten against
# the workspace.
#
# Pure grep on purpose: runs in any container, no clang tooling needed.

set -u

cd "$(dirname "$0")/.."

HOT_FILES=(
    src/mapping/router.cc
    src/mapping/router_workspace.cc
    src/mapping/router_workspace.hh
    src/mapping/distance_oracle.cc
    src/mapping/distance_oracle.hh
    src/mapping/routability_filter.hh
    src/arch/arch_context.hh
)

ALLOC_RE='(^|[^[:alnum:]_."])new[[:space:]]|std::make_unique|std::make_shared|[^[:alnum:]_]malloc[[:space:]]*\(|[^[:alnum:]_]calloc[[:space:]]*\(|[^[:alnum:]_]realloc[[:space:]]*\('
GROWTH_RE='\.(push_back|emplace_back|insert|resize|assign|reserve)[[:space:]]*\('
ALLOW_MARK='lint:allow-growth'

fail=0

for f in "${HOT_FILES[@]}"; do
    if [ ! -f "$f" ]; then
        echo "lint.sh: missing hot-path file $f (update HOT_FILES?)" >&2
        fail=1
        continue
    fi

    # Rule 1: no raw heap allocation at all.
    if grep -nE "$ALLOC_RE" "$f"; then
        echo "lint.sh: FAIL: raw heap allocation in router hot path: $f" >&2
        fail=1
    fi

    # Rule 2: container growth only on allow-marked lines.
    # A marker counts when it is on the matching line or the line above.
    while IFS=: read -r lineno line; do
        [ -n "$lineno" ] || continue
        if printf '%s' "$line" | grep -q "$ALLOW_MARK"; then
            continue
        fi
        prev=$((lineno - 1))
        if [ "$prev" -ge 1 ] &&
           sed -n "${prev}p" "$f" | grep -q "$ALLOW_MARK"; then
            continue
        fi
        echo "lint.sh: FAIL: unannotated container growth at $f:$lineno:" >&2
        echo "    $line" >&2
        echo "    (use RouterWorkspace scratch storage, or annotate an" >&2
        echo "     amortized buffer with '// $ALLOW_MARK (reason)')" >&2
        fail=1
    done < <(grep -nE "$GROWTH_RE" "$f")
done

if [ "$fail" -ne 0 ]; then
    echo "lint.sh: router hot-path lint FAILED" >&2
    exit 1
fi
echo "lint.sh: router hot-path lint OK (${#HOT_FILES[@]} files)"
