#!/usr/bin/env bash
# Zero-allocation lint for the router hot path.
#
# The inner routing loops (routeEdge and the structures it touches) must
# not allocate: RouterWorkspace exists precisely so per-edge routing
# reuses epoch-stamped scratch storage. This script fails the build when
#
#   1. a raw heap allocation (new / make_unique / make_shared / malloc /
#      calloc / realloc) appears anywhere in a hot-path file, or
#   2. a container-growth call (push_back / emplace_back / insert /
#      resize / assign / reserve on a member vector) appears on a line
#      that is not annotated with `lint:allow-growth` on the same or the
#      preceding line.
#
# The allow marker is reserved for amortized workspace buffers whose
# growth is tracked by RouterWorkspace::growthEvents and settles after
# warm-up. Anything else — in particular a per-edge push_back into a
# fresh vector — is a hot-loop allocation and must be rewritten against
# the workspace.
#
# Some hot-listed files also carry genuinely cold code: model loading in
# routability_filter.cc, the per-race setup in portfolio.hh. Wrap those
# in `lint:cold-begin(reason)` / `lint:cold-end` marker comments and both
# rules skip the region; unbalanced markers fail the lint. The markers
# are deliberately loud in review — a region creeping into a hot loop
# has to move out of the markers first.
#
# Pure grep/awk on purpose: runs in any container, no clang tooling
# needed.

set -u

cd "$(dirname "$0")/.."

HOT_FILES=(
    src/mapping/router.cc
    src/mapping/router_workspace.cc
    src/mapping/router_workspace.hh
    src/mapping/distance_oracle.cc
    src/mapping/distance_oracle.hh
    src/mapping/routability_filter.hh
    src/mapping/routability_filter.cc
    src/mapping/portfolio.hh
    src/arch/arch_context.hh
    src/serve/cache.hh
    src/serve/cache.cc
)

ALLOC_RE='(^|[^[:alnum:]_."])new[[:space:]]|std::make_unique|std::make_shared|[^[:alnum:]_]malloc[[:space:]]*\(|[^[:alnum:]_]calloc[[:space:]]*\(|[^[:alnum:]_]realloc[[:space:]]*\('
GROWTH_RE='\.(push_back|emplace_back|insert|resize|assign|reserve)[[:space:]]*\('
ALLOW_MARK='lint:allow-growth'
COLD_BEGIN='lint:cold-begin'
COLD_END='lint:cold-end'

fail=0

# Blank out lint:cold-begin/end regions while preserving line numbers,
# so grep -n results still point into the real file. Exits non-zero on
# unbalanced markers.
cold_filtered() {
    awk -v b="$COLD_BEGIN" -v e="$COLD_END" '
        index($0, b) { depth++ }
        { print (depth > 0 ? "" : $0) }
        index($0, e) { if (depth == 0) { bad = 1; exit 3 }; depth-- }
        END { if (depth != 0 || bad) exit 3 }
    ' "$1"
}

for f in "${HOT_FILES[@]}"; do
    if [ ! -f "$f" ]; then
        echo "lint.sh: missing hot-path file $f (update HOT_FILES?)" >&2
        base=$(basename "$f")
        stem=${base%%.*}
        ext=${base##*.}
        # Moved: same name elsewhere. Renamed: same stem prefix, or any
        # same-extension sibling in the expected directory.
        candidates=$({
            find src -type f \
                \( -name "$base" -o -name "${stem}.*" -o -name "${stem}_*" \)
            find "$(dirname "$f")" -maxdepth 1 -type f -name "*.${ext}"
        } 2>/dev/null | sort -u)
        if [ -n "$candidates" ]; then
            echo "    candidates with a similar name:" >&2
            printf '%s\n' "$candidates" | sed 's/^/      /' >&2
        else
            echo "    (no similarly named file under src/ — if the" >&2
            echo "     hot path was deleted, drop the entry)" >&2
        fi
        fail=1
        continue
    fi

    filtered=$(cold_filtered "$f")
    if [ $? -ne 0 ]; then
        echo "lint.sh: FAIL: unbalanced $COLD_BEGIN/$COLD_END markers in $f" >&2
        fail=1
        continue
    fi

    # Rule 1: no raw heap allocation at all (outside cold regions).
    if grep -nE "$ALLOC_RE" <<< "$filtered"; then
        echo "lint.sh: FAIL: raw heap allocation in router hot path: $f" >&2
        fail=1
    fi

    # Rule 2: container growth only on allow-marked lines.
    # A marker counts when it is on the matching line or the line above.
    while IFS=: read -r lineno line; do
        [ -n "$lineno" ] || continue
        if printf '%s' "$line" | grep -q "$ALLOW_MARK"; then
            continue
        fi
        prev=$((lineno - 1))
        if [ "$prev" -ge 1 ] &&
           sed -n "${prev}p" "$f" | grep -q "$ALLOW_MARK"; then
            continue
        fi
        echo "lint.sh: FAIL: unannotated container growth at $f:$lineno:" >&2
        echo "    $line" >&2
        echo "    (use RouterWorkspace scratch storage, annotate an" >&2
        echo "     amortized buffer with '// $ALLOW_MARK (reason)', or" >&2
        echo "     wrap genuinely cold code in $COLD_BEGIN/$COLD_END)" >&2
        fail=1
    done < <(grep -nE "$GROWTH_RE" <<< "$filtered")
done

if [ "$fail" -ne 0 ]; then
    echo "lint.sh: router hot-path lint FAILED" >&2
    exit 1
fi
echo "lint.sh: router hot-path lint OK (${#HOT_FILES[@]} files)"
