/**
 * @file
 * Throughput-regression guard over LISA_METRICS_OUT JSONL dumps.
 *
 * Usage: bench_compare <baseline.jsonl> <current.jsonl> [max_regression]
 *
 * Each file must contain at least one suite summary line
 * (`{"event":"suite",...,"attemptsPerSec":X,...}`); the last one wins.
 * Exits 1 when the current attemptsPerSec falls more than
 * @p max_regression (fraction, default 0.20) below the baseline, 2 on
 * usage or parse errors, 0 otherwise. Improvements always pass.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

namespace {

/** @return the attemptsPerSec of the last suite line, or -1 if absent. */
double
lastSuiteAttemptsPerSec(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "bench_compare: cannot open " << path << "\n";
        return -1.0;
    }
    const std::string event_tag = "\"event\":\"suite\"";
    const std::string rate_tag = "\"attemptsPerSec\":";
    double value = -1.0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find(event_tag) == std::string::npos)
            continue;
        const size_t at = line.find(rate_tag);
        if (at == std::string::npos)
            continue;
        const char *start = line.c_str() + at + rate_tag.size();
        char *end = nullptr;
        const double v = std::strtod(start, &end);
        if (end != start)
            value = v;
    }
    if (value < 0.0)
        std::cerr << "bench_compare: no suite attemptsPerSec in " << path
                  << "\n";
    return value;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 3 && argc != 4) {
        std::cerr << "usage: bench_compare <baseline.jsonl> <current.jsonl>"
                     " [max_regression]\n";
        return 2;
    }
    double max_regression = 0.20;
    if (argc == 4) {
        char *end = nullptr;
        max_regression = std::strtod(argv[3], &end);
        if (end == argv[3] || max_regression < 0.0 || max_regression >= 1.0) {
            std::cerr << "bench_compare: max_regression must be in [0, 1)\n";
            return 2;
        }
    }

    const double baseline = lastSuiteAttemptsPerSec(argv[1]);
    const double current = lastSuiteAttemptsPerSec(argv[2]);
    if (baseline < 0.0 || current < 0.0)
        return 2;

    const double floor = baseline * (1.0 - max_regression);
    const double delta_pct = (current / baseline - 1.0) * 100.0;
    std::cout << "bench_compare: baseline " << baseline << " att/s, current "
              << current << " att/s (" << (delta_pct >= 0 ? "+" : "")
              << delta_pct << "%), floor " << floor << " att/s\n";
    if (current < floor) {
        std::cerr << "bench_compare: FAIL — attemptsPerSec regressed more "
                     "than "
                  << max_regression * 100.0 << "%\n";
        return 1;
    }
    std::cout << "bench_compare: OK\n";
    return 0;
}
