/**
 * @file
 * lisa-verify: check serialized mappings against the invariant verifier.
 *
 * Usage:
 *   lisa-verify [--partial] <mapping-file>...
 *   lisa-verify --demo <out-file>
 *
 * Exit status 0 when every file loads and verifies clean, 1 otherwise.
 * --partial skips the completeness checks (all placed / all routed / zero
 * overuse) so mid-search snapshots can be checked too. --demo maps a small
 * kernel with the vanilla SA mapper and writes the resulting mapping file,
 * as a quick way to produce a valid input.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "arch/arch_context.hh"
#include "arch/cgra.hh"
#include "mappers/sa_mapper.hh"
#include "mapping/ii_search.hh"
#include "verify/mapping_io.hh"
#include "verify/verify.hh"
#include "workloads/registry.hh"

namespace {

int
usage()
{
    std::cerr << "usage: lisa-verify [--partial] <mapping-file>...\n"
                 "       lisa-verify --demo <out-file>\n";
    return 2;
}

int
writeDemo(const std::string &path)
{
    using namespace lisa;
    arch::CgraArch accel(arch::baselineCgra(4, 4));
    // Honors LISA_ARCH_CACHE: repeated demo runs warm-start the MRRG and
    // oracle tables from disk.
    arch::ArchContext context(accel);
    const auto suite = workloads::polybenchSuite();
    map::SaMapper mapper;
    map::SearchOptions options;
    options.perIiBudget = 2.0;
    options.totalBudget = 20.0;
    auto result = map::searchMinIi(mapper, suite.front().dfg, context,
                                   options);
    if (!result.success) {
        std::cerr << "lisa-verify: demo mapping attempt failed\n";
        return 1;
    }
    std::ofstream os(path);
    if (!os) {
        std::cerr << "lisa-verify: cannot write " << path << "\n";
        return 1;
    }
    os << "# " << suite.front().name << " on " << accel.name() << ", II "
       << result.ii << "\n";
    verify::writeMapping(*result.mapping, os);
    std::cout << path << ": wrote " << suite.front().name << " mapping at II "
              << result.ii << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> files;
    bool partial = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--partial") {
            partial = true;
        } else if (arg == "--demo") {
            if (i + 1 >= argc)
                return usage();
            return writeDemo(argv[i + 1]);
        } else if (arg == "--help" || arg == "-h") {
            return usage();
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty())
        return usage();

    int bad = 0;
    for (const std::string &file : files) {
        std::ifstream is(file);
        if (!is) {
            std::cerr << file << ": cannot open\n";
            ++bad;
            continue;
        }
        std::string error;
        auto loaded = lisa::verify::readMapping(is, &error);
        if (!loaded) {
            std::cout << file << ": LOAD ERROR: " << error << "\n";
            ++bad;
            continue;
        }
        lisa::verify::VerifyOptions options;
        options.requireComplete = !partial;
        auto report = lisa::verify::verifyMapping(
            *loaded->dfg, *loaded->mrrg, *loaded->mapping, options);
        if (report.ok()) {
            std::cout << file << ": ok (" << loaded->dfg->numNodes()
                      << " nodes, " << loaded->dfg->numEdges()
                      << " edges, II " << loaded->mrrg->ii() << ")\n";
        } else {
            std::cout << file << ": " << report.toString() << "\n";
            ++bad;
        }
    }
    return bad == 0 ? 0 : 1;
}
