#!/usr/bin/env python3
"""Determinism lint for the LISA search stack.

The paper's headline property — (seed, threads)-reproducible search —
dies quietly: one std::random_device, one hash-order iteration feeding
placement order, one wall-clock read steering a search decision, and two
runs of the same seed diverge with no test failing. This lint walks the
search stack (src/mapping, src/mappers, src/core, plus the shared
src/arch and src/support layers they sit on) and fails on the patterns
that can silently break reproducibility:

  random-device   std::random_device — nondeterministic entropy source.
                  All randomness must flow from an explicitly seeded
                  support::Rng (or a deterministic split of one).
  libc-rand       rand()/srand() — hidden global generator state, not
                  seed-threaded, not splittable, not reproducible across
                  platforms.
  wall-clock      direct *_clock::now() / time() / gettimeofday reads.
                  Budget accounting must go through support::Stopwatch
                  (whose implementation carries the one allowed marker);
                  any other clock read is a covert input to the search.
  unordered-iter  iteration over a std::unordered_{map,set} (range-for
                  or begin()/end()): bucket order varies across standard
                  libraries and hash seeds, so any iteration whose body
                  feeds placement/routing/selection order is a silent
                  portability break. Iterate a sorted/insertion-ordered
                  mirror instead (see LisaMapper::selectUnmapSet).
  relaxed-flag    std::memory_order_relaxed without a rationale. Every
                  relaxed operation must carry a `relaxed:` comment on
                  the same or a nearby preceding line stating why the
                  weak ordering cannot reorder anything that matters
                  (DESIGN.md section 13 holds the capability map).

Escape hatch: a `lint:allow-nondet(<reason>)` comment on the same line
or one of the two preceding lines suppresses any finding. Reserve it for
code that is genuinely outside the reproducibility contract (e.g. the
Stopwatch primitive itself); everything else should be rewritten.

`--self-test` seeds every violation class into a throwaway fixture tree
and asserts the scanner catches each one (and that the escape marker and
`relaxed:` rationales suppress) — the lint's own regression suite,
wired into ctest as DeterminismLint.SelfTest.

Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import os
import re
import sys
import tempfile

# Paths scanned by default, relative to the repo root: directories or
# individual files. The three search-stack directories are the
# contract's core; arch and support are included because the search
# stack's shared state (ArchContext, thread pool, Rng, Stopwatch) lives
# there; serve is the daemon whose cache keys and replay must be
# reproducible, and dfg/canonical is the hash those keys stand on.
DEFAULT_DIRS = [
    "src/mapping",
    "src/mappers",
    "src/core",
    "src/arch",
    "src/support",
    "src/serve",
    "src/dfg/canonical.hh",
    "src/dfg/canonical.cc",
]

SOURCE_EXTENSIONS = (".cc", ".hh", ".cpp", ".hpp", ".h")

ALLOW_MARKER = "lint:allow-nondet"
RELAXED_RATIONALE = "relaxed:"
# How many lines above a finding may carry the marker / rationale.
ALLOW_LOOKBACK = 2
RELAXED_LOOKBACK = 6

RE_RANDOM_DEVICE = re.compile(r"\brandom_device\b")
RE_LIBC_RAND = re.compile(r"(?<![\w.:>])s?rand\s*\(")
RE_WALL_CLOCK = re.compile(
    r"(?:system_clock|high_resolution_clock|steady_clock)\s*::\s*now"
    r"|(?<![\w.:>])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    r"|\bgettimeofday\s*\(|\bclock_gettime\s*\(|\bclock\s*\(\s*\)"
)
RE_UNORDERED_DECL = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*"
    r"(?:&\s*)?(\w+)\s*(?:[;={(),]|$)"
)
RE_RELAXED = re.compile(r"\bmemory_order_relaxed\b")


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure, so rules never fire on prose or quoted text."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "str"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                mode = "chr"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif mode == "line":
            if c == "\n":
                mode = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif mode == "block":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif mode in ("str", "chr"):
            quote = '"' if mode == "str" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
                continue
            if c == quote:
                mode = "code"
                out.append(" ")
            elif c == "\n":  # unterminated (macro line continuation etc.)
                mode = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def has_marker(raw_lines, lineno, marker, lookback):
    """True when `marker` appears on raw line `lineno` (1-based) or up to
    `lookback` lines above it."""
    lo = max(1, lineno - lookback)
    return any(
        marker in raw_lines[k - 1] for k in range(lo, lineno + 1)
    )


class Finding:
    def __init__(self, path, lineno, rule, message):
        self.path = path
        self.lineno = lineno
        self.rule = rule
        self.message = message

    def render(self, root):
        rel = os.path.relpath(self.path, root)
        return f"{rel}:{self.lineno}: [{self.rule}] {self.message}"


def unordered_iteration_findings(path, raw_lines, code_lines):
    """Flag range-for / begin()/end() over identifiers declared in this
    file as unordered containers."""
    findings = []
    names = set()
    for line in code_lines:
        for m in RE_UNORDERED_DECL.finditer(line):
            names.add(m.group(1))
    if not names:
        return findings
    alt = "|".join(sorted(re.escape(n) for n in names))
    re_range_for = re.compile(
        r"for\s*\([^;)]*?:\s*&?\s*(?:" + alt + r")\b"
    )
    re_begin_end = re.compile(
        r"\b(?:" + alt + r")\s*\.\s*(?:c?r?begin|c?r?end)\s*\("
    )
    for idx, line in enumerate(code_lines, start=1):
        hit = re_range_for.search(line) or re_begin_end.search(line)
        if not hit:
            continue
        findings.append(Finding(
            path, idx, "unordered-iter",
            "iteration over an unordered container — bucket order is "
            "not part of the (seed, threads) contract; iterate a "
            "sorted or insertion-ordered mirror instead"))
    return findings


def scan_file(path):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        print(f"check_determinism: cannot read {path}: {e}",
              file=sys.stderr)
        sys.exit(2)

    raw_lines = text.split("\n")
    code = strip_comments_and_strings(text)
    code_lines = code.split("\n")

    findings = []
    simple_rules = [
        ("random-device", RE_RANDOM_DEVICE,
         "std::random_device is a nondeterministic entropy source; "
         "derive streams from a seeded support::Rng"),
        ("libc-rand", RE_LIBC_RAND,
         "rand()/srand() use hidden global state; derive streams from "
         "a seeded support::Rng"),
        ("wall-clock", RE_WALL_CLOCK,
         "direct clock read; route budget accounting through "
         "support::Stopwatch so time never steers search decisions"),
    ]
    for idx, line in enumerate(code_lines, start=1):
        for rule, regex, msg in simple_rules:
            if regex.search(line):
                findings.append(Finding(path, idx, rule, msg))
        if RE_RELAXED.search(line):
            if not has_marker(raw_lines, idx, RELAXED_RATIONALE,
                              RELAXED_LOOKBACK):
                findings.append(Finding(
                    path, idx, "relaxed-flag",
                    "memory_order_relaxed without a `relaxed:` "
                    "rationale comment; state why the weak ordering "
                    "cannot reorder anything that matters"))

    findings.extend(
        unordered_iteration_findings(path, raw_lines, code_lines))

    # The escape marker suppresses any rule.
    return [
        f for f in findings
        if not has_marker(raw_lines, f.lineno, ALLOW_MARKER,
                          ALLOW_LOOKBACK)
    ]


def collect_files(root, dirs):
    files = []
    for d in dirs:
        base = os.path.join(root, d)
        if os.path.isfile(base):
            files.append(base)
            continue
        if not os.path.isdir(base):
            print(f"check_determinism: missing scan path {base}",
                  file=sys.stderr)
            sys.exit(2)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(SOURCE_EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def run_scan(root, dirs):
    files = collect_files(root, dirs)
    findings = []
    for path in files:
        findings.extend(scan_file(path))
    for f in findings:
        print(f.render(root))
    if findings:
        by_rule = {}
        for f in findings:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        summary = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items()))
        print(f"check_determinism: FAILED — {len(findings)} finding(s) "
              f"across {len(files)} file(s) ({summary})",
              file=sys.stderr)
        return 1
    print(f"check_determinism: OK ({len(files)} files clean)")
    return 0


# ---------------------------------------------------------------------------
# Self-test: seed each violation class into a fixture tree and assert the
# scanner catches it; assert the escape marker and rationale suppress.

FIXTURES = {
    # Each entry: filename -> (contents, expected rule ids in order of
    # appearance; [] means the file must scan clean).
    "random_device.cc": (
        """#include <random>
int seed() {
    std::random_device rd;
    return static_cast<int>(rd());
}
""",
        ["random-device"],
    ),
    "libc_rand.cc": (
        """#include <cstdlib>
int draw() { return rand() % 7; }
void reseed() { srand(42); }
""",
        ["libc-rand", "libc-rand"],
    ),
    "wall_clock.cc": (
        """#include <chrono>
bool acceptWorse() {
    auto t = std::chrono::steady_clock::now();
    return t.time_since_epoch().count() % 2 == 0;
}
""",
        ["wall-clock"],
    ),
    "unordered_iter.cc": (
        """#include <unordered_map>
#include <unordered_set>
int sumFirst(const std::unordered_map<int, int> &scores) {
    int total = 0;
    for (const auto &kv : scores)
        total += kv.second;
    return total;
}
int takeAny(std::unordered_set<int> pending) {
    return *pending.begin();
}
""",
        ["unordered-iter", "unordered-iter"],
    ),
    "relaxed_flag.cc": (
        """#include <atomic>
bool poll(const std::atomic<bool> &flag) {
    return flag.load(std::memory_order_relaxed);
}
""",
        ["relaxed-flag"],
    ),
    "relaxed_with_rationale.cc": (
        """#include <atomic>
bool poll(const std::atomic<bool> &flag) {
    // relaxed: advisory latch, no data published through the flag.
    return flag.load(std::memory_order_relaxed);
}
""",
        [],
    ),
    "allowed.cc": (
        """#include <chrono>
double wallSeconds() {
    // lint:allow-nondet(fixture: the one blessed clock primitive)
    auto t = std::chrono::steady_clock::now();
    return static_cast<double>(t.time_since_epoch().count());
}
""",
        [],
    ),
    "comment_only.cc": (
        """// Mentions of steady_clock::now, rand(, random_device and
// memory_order_relaxed in comments or strings must never fire.
const char *kDoc = "std::random_device rand( steady_clock::now";
int x = 0;
""",
        [],
    ),
    "membership_only.cc": (
        """#include <unordered_set>
bool seen(const std::unordered_set<int> &s, int v) {
    return s.count(v) > 0; // membership is order-free: fine
}
""",
        [],
    ),
}


def self_test():
    failures = []
    with tempfile.TemporaryDirectory(prefix="lisa_detlint_") as tmp:
        fixture_root = os.path.join(tmp, "src", "mapping")
        os.makedirs(fixture_root)
        for name, (contents, _) in FIXTURES.items():
            with open(os.path.join(fixture_root, name), "w",
                      encoding="utf-8") as f:
                f.write(contents)
        for name, (_, expected) in sorted(FIXTURES.items()):
            path = os.path.join(fixture_root, name)
            got = [f.rule for f in scan_file(path)]
            if got != expected:
                failures.append(
                    f"{name}: expected {expected or 'clean'}, got "
                    f"{got or 'clean'}")
    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}", file=sys.stderr)
        return 1
    print(f"check_determinism: self-test OK "
          f"({len(FIXTURES)} fixtures, all violation classes caught)")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Determinism lint for the LISA search stack")
    parser.add_argument(
        "--root", default=None,
        help="repository root (default: parent of this script)")
    parser.add_argument(
        "--self-test", action="store_true",
        help="seed each violation class into a fixture tree and assert "
             "the scanner catches it")
    parser.add_argument(
        "dirs", nargs="*",
        help=f"directories or files to scan relative to the root "
             f"(default: {' '.join(DEFAULT_DIRS)})")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(self_test())

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    dirs = args.dirs or DEFAULT_DIRS
    sys.exit(run_scan(root, dirs))


if __name__ == "__main__":
    main()
